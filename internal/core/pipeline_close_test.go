package core

import (
	"reflect"
	"testing"

	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// closeInterval produces one interval's flows: n benign plus nAnom flood
// flows toward one victim (the same mix synthInterval feeds).
func closeInterval(r *stats.Rand, n, nAnom int) []flow.Record {
	recs := make([]flow.Record, 0, n+nAnom)
	for i := 0; i < nAnom; i++ {
		recs = append(recs, flow.Record{
			SrcAddr: uint32(r.IntN(1 << 30)), DstAddr: 0x0a0a0a0a,
			SrcPort: uint16(1024 + r.IntN(60000)), DstPort: 7000,
			Protocol: 6, Packets: 1, Bytes: 40,
		})
	}
	for i := 0; i < n; i++ {
		recs = append(recs, flow.Record{
			SrcAddr: uint32(r.IntN(4096)), DstAddr: uint32(r.IntN(512)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1000)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(5000)),
		})
	}
	return recs
}

// TestBeginFinishMatchesEndInterval pins the two-phase close to the
// synchronous one on a single pipeline: every interval's Begin+Finish
// report must equal EndInterval's, through training, a flood alarm, and
// the intervals after it.
func TestBeginFinishMatchesEndInterval(t *testing.T) {
	sync, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	piped, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, rp := stats.NewRand(9), stats.NewRand(9)
	alarmed := false
	for i := 0; i < 12; i++ {
		nAnom := 0
		if i == 10 {
			nAnom = 1500
		}
		sync.ObserveBatch(closeInterval(rs, 3000, nAnom))
		piped.ObserveBatch(closeInterval(rp, 3000, nAnom))
		want, err := sync.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		pc, err := piped.BeginClose()
		if err != nil {
			t.Fatal(err)
		}
		got, err := pc.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: two-phase report diverged\ngot:  %+v\nwant: %+v", i, got, want)
		}
		alarmed = alarmed || want.Alarm
	}
	if !alarmed {
		t.Error("no alarm; extraction path not compared")
	}
}

// TestBeginFinishMatchesEndIntervalGroup pins the sharded two-phase
// close: BeginIntervalGroup+Finish over shard pipelines fed identical
// partitions must equal EndIntervalGroup report for report.
func TestBeginFinishMatchesEndIntervalGroup(t *testing.T) {
	const shards = 3
	newGroup := func() []*Pipeline {
		group := make([]*Pipeline, shards)
		for i := range group {
			p, err := New(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			group[i] = p
		}
		return group
	}
	gSync, gPiped := newGroup(), newGroup()
	rs, rp := stats.NewRand(21), stats.NewRand(21)
	feed := func(group []*Pipeline, r *stats.Rand, nAnom int) {
		recs := closeInterval(r, 3000, nAnom)
		for i, rec := range recs {
			group[i%shards].Observe(rec)
		}
	}
	alarmed := false
	for i := 0; i < 12; i++ {
		nAnom := 0
		if i == 10 {
			nAnom = 1500
		}
		feed(gSync, rs, nAnom)
		feed(gPiped, rp, nAnom)
		want, err := EndIntervalGroup(gSync)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := BeginIntervalGroup(gPiped)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pc.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: sharded two-phase report diverged\ngot:  %+v\nwant: %+v", i, got, want)
		}
		alarmed = alarmed || want.Alarm
	}
	if !alarmed {
		t.Error("no alarm; extraction path not compared")
	}
}

// TestBeginIntervalGroupValidation mirrors EndIntervalGroup's input
// checks.
func TestBeginIntervalGroupValidation(t *testing.T) {
	if _, err := BeginIntervalGroup(nil); err == nil {
		t.Error("empty group accepted")
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BeginIntervalGroup([]*Pipeline{p, p}); err == nil {
		t.Error("duplicate pipeline accepted")
	}
}

// TestPendingCloseRecyclesState proves the freelist claim: from the
// second interval on, a close's drained containers are recycled ones —
// the histograms cycling through BeginClose are pointer-identical to
// sets drained earlier, so steady-state closes allocate no new
// buffer/arena memory.
func TestPendingCloseRecyclesState(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	sets := make(map[any]int)
	cycle := func() {
		p.ObserveBatch(closeInterval(r, 500, 0))
		pc, err := p.BeginClose()
		if err != nil {
			t.Fatal(err)
		}
		sets[pc.states[0].clones[0][0]]++
		if _, err := pc.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	const cycles = 6
	for i := 0; i < cycles; i++ {
		cycle()
	}
	// Double-buffering: exactly two clone sets may exist no matter how
	// many intervals close, and each drains on alternate closes.
	if len(sets) != 2 {
		t.Fatalf("%d distinct drained clone sets after %d closes, want 2 (double-buffer recycling)", len(sets), cycles)
	}
	for h, n := range sets {
		if n != cycles/2 {
			t.Errorf("clone set %p drained %d times, want %d", h, n, cycles/2)
		}
	}
	if got := len(p.spares); got != 1 {
		t.Fatalf("freelist holds %d states after a finished close, want 1", got)
	}
}

// BenchmarkPipelinedClose compares the synchronous interval close with
// the drained two-phase one on identical 5k-flow intervals; allocs/op is
// the freelist's steady-state bar (no per-close buffer or arena growth).
func BenchmarkPipelinedClose(b *testing.B) {
	run := func(b *testing.B, close func(p *Pipeline) (*Report, error)) {
		p, err := New(testConfig())
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		r := stats.NewRand(7)
		recs := closeInterval(r, 5000, 0)
		// Warm both halves of the double buffer: the first close allocates
		// the replacement set, the second grows its buffer columns; from
		// then on every close recycles.
		for w := 0; w < 2; w++ {
			p.ObserveBatch(recs)
			if _, err := close(p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.ObserveBatch(recs)
			if _, err := close(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sync", func(b *testing.B) {
		run(b, func(p *Pipeline) (*Report, error) { return p.EndInterval() })
	})
	b.Run("two-phase", func(b *testing.B) {
		run(b, func(p *Pipeline) (*Report, error) {
			pc, err := p.BeginClose()
			if err != nil {
				return nil, err
			}
			return pc.Finish()
		})
	})
}
