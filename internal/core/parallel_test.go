package core

import (
	"reflect"
	"sync"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/stats"
)

// makeIntervals synthesizes a deterministic multi-interval stream: benign
// background everywhere plus a dstPort flood in the final interval.
func makeIntervals(seed uint64, intervals, perInterval int) [][]flow.Record {
	r := stats.NewRand(seed)
	out := make([][]flow.Record, intervals)
	for i := range out {
		recs := make([]flow.Record, 0, perInterval*3/2)
		for j := 0; j < perInterval; j++ {
			recs = append(recs, flow.Record{
				SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
				SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
				Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
			})
		}
		if i == intervals-1 {
			for j := 0; j < perInterval/2; j++ {
				recs = append(recs, flow.Record{
					SrcAddr: uint32(r.IntN(1 << 28)), DstAddr: 42,
					SrcPort: uint16(r.IntN(60000)), DstPort: 31337,
					Protocol: 6, Packets: 1, Bytes: 40,
				})
			}
		}
		out[i] = recs
	}
	return out
}

// TestParallelPipelineMatchesSequential is the tentpole's determinism
// contract: ObserveBatch on a parallel bank yields reports identical to
// per-record Observe on a sequential bank — including the alarming
// interval's extraction output.
func TestParallelPipelineMatchesSequential(t *testing.T) {
	mk := func(workers int) *Pipeline {
		p, err := New(Config{
			Detector:       detector.Config{Bins: 256, TrainIntervals: 4, Seed: 5},
			KeepSuspicious: true,
			Workers:        workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq := mk(1)
	par := mk(8)

	stream := makeIntervals(9, 8, 4000)
	alarmed := false
	for i, recs := range stream {
		for _, rec := range recs {
			seq.Observe(rec)
		}
		par.ObserveBatch(recs)
		srep, err := seq.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		prep, err := par.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(srep, prep) {
			t.Fatalf("interval %d: reports diverged\nseq: %+v\npar: %+v", i, srep, prep)
		}
		if srep.Alarm {
			alarmed = true
		}
	}
	if !alarmed {
		t.Error("no alarm raised; extraction path not compared")
	}
}

// TestExtractionWorkersDeterminism sweeps Config.Workers over the
// extraction stage: for every worker count the alarming interval's
// report — including the parallel prefilter scan and the KeepSuspicious
// forensic slice — is deeply equal to the sequential pipeline's. The
// final interval exceeds the prefilter's parallel threshold, so the
// chunked scan really runs.
func TestExtractionWorkersDeterminism(t *testing.T) {
	stream := makeIntervals(9, 8, 4000)
	mk := func(workers int) *Pipeline {
		p, err := New(Config{
			Detector:       detector.Config{Bins: 256, TrainIntervals: 4, Seed: 5},
			KeepSuspicious: true,
			Workers:        workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq := mk(1)
	defer seq.Close()
	want := make([]*Report, len(stream))
	alarmed := false
	for i, recs := range stream {
		rep, err := seq.ProcessInterval(recs)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
		alarmed = alarmed || rep.Alarm
	}
	if !alarmed {
		t.Fatal("sequential run never alarmed; extraction not covered")
	}
	for _, workers := range []int{0, 2, 4, 8} {
		par := mk(workers)
		for i, recs := range stream {
			rep, err := par.ProcessInterval(recs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, want[i]) {
				t.Fatalf("workers=%d interval %d: report diverged\ngot:  %+v\nwant: %+v",
					workers, i, rep, want[i])
			}
		}
		par.Close()
	}
}

// TestExtractOfflineWorkersDeterminism pins the post-mortem entry point
// to the same contract: parallel prefiltering returns a report deeply
// equal to the sequential one for every worker count.
func TestExtractOfflineWorkersDeterminism(t *testing.T) {
	recs := makeIntervals(11, 1, 5000)[0]
	meta := detector.NewMetaData()
	meta.Add(flow.DstPort, 31337)
	meta.Add(flow.DstIP, 42)
	meta.Add(flow.DstPort, 7)

	cfg := Config{KeepSuspicious: true, Workers: 1}
	want, err := ExtractOffline(cfg, recs, meta)
	if err != nil {
		t.Fatal(err)
	}
	if want.SuspiciousFlows == 0 {
		t.Fatal("meta selected nothing; parallel path not exercised")
	}
	for _, workers := range []int{0, 2, 4, 8} {
		cfg.Workers = workers
		got, err := ExtractOffline(cfg, recs, meta)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: offline report diverged\ngot:  %+v\nwant: %+v", workers, got, want)
		}
	}
}

// TestPipelineConcurrentObserveBatch drives ObserveBatch from many
// goroutines on one pipeline (run under -race) and checks the interval
// accounting survives the interleaving.
func TestPipelineConcurrentObserveBatch(t *testing.T) {
	p, err := New(Config{Detector: detector.Config{Bins: 128}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const perProducer = 1000
	r := stats.NewRand(17)
	batches := make([][]flow.Record, producers)
	for i := range batches {
		recs := make([]flow.Record, perProducer)
		for j := range recs {
			recs[j] = flow.Record{
				SrcAddr: uint32(r.IntN(10000)), DstAddr: uint32(r.IntN(1000)),
				SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1000)),
				Protocol: 6, Packets: 1, Bytes: 100,
			}
		}
		batches[i] = recs
	}

	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(recs []flow.Record) {
			defer wg.Done()
			// Mix batch and single-record ingestion under contention.
			p.ObserveBatch(recs[:len(recs)/2])
			for _, rec := range recs[len(recs)/2:] {
				p.Observe(rec)
			}
		}(batches[i])
	}
	wg.Wait()

	rep, err := p.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if want := producers * perProducer; rep.TotalFlows != want {
		t.Fatalf("TotalFlows = %d, want %d", rep.TotalFlows, want)
	}
}
