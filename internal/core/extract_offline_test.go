package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/itemset"
	"anomalyx/internal/mining"
)

// offlineRecs is a small interval with a dstPort-445 cluster the
// annotations select.
func offlineRecs() []flow.Record {
	recs := make([]flow.Record, 0, 120)
	for i := 0; i < 100; i++ {
		recs = append(recs, flow.Record{
			SrcAddr: uint32(i), DstAddr: 7, DstPort: 445, SrcPort: uint16(1024 + i),
			Protocol: 6, Packets: 3, Bytes: 144,
		})
	}
	for i := 0; i < 20; i++ {
		recs = append(recs, flow.Record{
			SrcAddr: uint32(1000 + i), DstAddr: uint32(i), DstPort: 80,
			SrcPort: uint16(2000 + i), Protocol: 6, Packets: 10, Bytes: 5000,
		})
	}
	return recs
}

func meta445() detector.MetaData {
	m := detector.NewMetaData()
	m.Add(flow.DstPort, 445)
	return m
}

func TestExtractOfflineMinesSuspiciousSet(t *testing.T) {
	recs := offlineRecs()
	rep, err := ExtractOffline(Config{KeepSuspicious: true}, recs, meta445())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm || rep.TotalFlows != len(recs) || rep.SuspiciousFlows != 100 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if len(rep.Suspicious) != 100 {
		t.Fatalf("KeepSuspicious retained %d flows", len(rep.Suspicious))
	}
	// Default relative support: 5% of 100 suspicious flows.
	if rep.MinSupport != 5 {
		t.Fatalf("MinSupport = %d, want 5", rep.MinSupport)
	}
	if len(rep.ItemSets) == 0 || rep.Mining == nil {
		t.Fatal("no item-sets mined")
	}
	// The shared (dstIP, dstPort, proto, packets, bytes) signature must
	// surface as one high-support maximal set.
	found := false
	for i := range rep.ItemSets {
		if rep.ItemSets[i].Support == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no support-100 item-set in %v", rep.ItemSets)
	}
	if rep.CostReduction != float64(len(recs))/float64(len(rep.ItemSets)) {
		t.Fatalf("CostReduction = %v", rep.CostReduction)
	}
}

func TestExtractOfflineAbsoluteSupportAndQuantize(t *testing.T) {
	rep, err := ExtractOffline(Config{MinSupport: 50, QuantizeSizes: true}, offlineRecs(), meta445())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinSupport != 50 {
		t.Fatalf("MinSupport = %d, want the absolute 50", rep.MinSupport)
	}
	// Quantization buckets packets=3 to the 2..3 power-of-two bucket, so
	// the mined values must be bucket representatives, not raw sizes.
	for i := range rep.ItemSets {
		for _, it := range rep.ItemSets[i].Items {
			if it.Kind == flow.Packets && it.Value == 3 {
				t.Fatalf("unquantized packets item in %v", rep.ItemSets[i])
			}
		}
	}
}

func TestExtractOfflineEmptySelection(t *testing.T) {
	rep, err := ExtractOffline(Config{}, offlineRecs(), detector.NewMetaData())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuspiciousFlows != 0 || rep.Mining != nil || len(rep.ItemSets) != 0 {
		t.Fatalf("empty meta still extracted: %+v", rep)
	}
	if !math.IsInf(rep.CostReduction, 1) {
		t.Fatalf("CostReduction = %v, want +Inf for an empty suspicious set", rep.CostReduction)
	}
}

// failingMiner exercises the mining error path.
type failingMiner struct{}

var errMine = errors.New("boom")

func (failingMiner) Mine([]itemset.Transaction, int) (*mining.Result, error) { return nil, errMine }
func (failingMiner) Name() string                                            { return "failing" }

func TestExtractOfflineMinerError(t *testing.T) {
	_, err := ExtractOffline(Config{Miner: failingMiner{}}, offlineRecs(), meta445())
	if !errors.Is(err, errMine) {
		t.Fatalf("err = %v, want wrapped miner error", err)
	}
}

// TestPipelineAbsorbMergesState pins the PR 2 merge contract of the
// public Absorb API (the buffer-moving variant, still exposed via the
// facade for caller-managed merges): absorbing a sibling and closing
// the interval yields the report one pipeline over the combined stream
// produces.
func TestPipelineAbsorbMergesState(t *testing.T) {
	cfg := Config{Detector: detector.Config{Bins: 128, Seed: 9}}
	mk := func() *Pipeline {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	recs := offlineRecs()
	ref := mk()
	defer ref.Close()
	wantRep, err := ref.ProcessInterval(recs)
	if err != nil {
		t.Fatal(err)
	}

	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()
	a.ObserveBatch(recs[:len(recs)/2])
	b.ObserveBatch(recs[len(recs)/2:])
	if err := a.Absorb(b); err != nil {
		t.Fatal(err)
	}
	gotRep, err := a.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Fatalf("absorbed report diverged\ngot:  %+v\nwant: %+v", gotRep, wantRep)
	}
	// The absorbed sibling is drained and reusable.
	if rep, err := b.EndInterval(); err != nil || rep.TotalFlows != 0 {
		t.Fatalf("sibling not drained: %+v, %v", rep, err)
	}
	if err := a.Absorb(a); err == nil {
		t.Fatal("self-absorb accepted")
	}
}

func TestEndIntervalGroupValidation(t *testing.T) {
	if _, err := EndIntervalGroup(nil); err == nil {
		t.Fatal("empty group accepted")
	}
	p, err := New(Config{Detector: detector.Config{Bins: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := New(Config{Detector: detector.Config{Bins: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	// A duplicate entry must error, not self-deadlock on the second
	// lock of the same pipeline.
	if _, err := EndIntervalGroup([]*Pipeline{p, q, q}); err == nil {
		t.Fatal("duplicate pipeline in group accepted")
	}
	// A singleton group is the plain interval close.
	p.Observe(flow.Record{DstPort: 80})
	rep, err := EndIntervalGroup([]*Pipeline{p})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalFlows != 1 {
		t.Fatalf("TotalFlows = %d, want 1", rep.TotalFlows)
	}
}
