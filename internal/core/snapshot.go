package core

import (
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// PipelineSnapshot is the exported state of a Pipeline: the detector
// bank's full state plus the current interval's buffered flow records.
// Restoring it into a pipeline built from the same Config reproduces the
// original exactly — subsequent reports are byte-identical — which is
// the invariant the wire codec's round-trip tests pin down. Like the
// bank and histogram snapshots it carries state only; configuration
// matching is the caller's contract (the wire handshake digests it).
type PipelineSnapshot struct {
	Bank   detector.BankSnapshot
	Buffer []flow.Record
}

// Snapshot captures the pipeline's full state: bank history plus the
// open interval's flow buffer. The result shares no memory with the
// pipeline.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PipelineSnapshot{
		Bank:   p.bank.Snapshot(),
		Buffer: append([]flow.Record(nil), p.buffer...),
	}
}

// RestoreSnapshot replaces the pipeline's state with s. The pipeline
// must share the snapshot source's configuration (features, detector
// parameters).
func (p *Pipeline) RestoreSnapshot(s PipelineSnapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bank.RestoreSnapshot(s.Bank); err != nil {
		return err
	}
	p.buffer = append(p.buffer[:0], s.Buffer...)
	return nil
}

// DrainSnapshot captures the pipeline's state and then clears the open
// interval — clone histograms reset, flow buffer emptied — leaving the
// pipeline ready to accumulate the next interval without having closed
// detection. This is the distributed agent step: the agent drains at
// each interval boundary and ships the snapshot to the collector, which
// absorbs it (via the Absorb merge path) into the primary pipeline that
// owns the detection history. An agent pipeline never calls EndInterval,
// so its own history stays empty and the drained snapshot is effectively
// just the open interval.
func (p *Pipeline) DrainSnapshot() PipelineSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PipelineSnapshot{
		Bank:   p.bank.Snapshot(),
		Buffer: append([]flow.Record(nil), p.buffer...),
	}
	p.bank.ResetInterval()
	p.buffer = p.buffer[:0]
	return s
}
