package core

import (
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/histogram"
)

// PipelineSnapshot is the exported state of a Pipeline: the detector
// bank's full state plus the current interval's buffered flows in
// columnar form. Restoring it into a pipeline built from the same
// Config reproduces the original exactly — subsequent reports are
// byte-identical — which is the invariant the wire codec's round-trip
// tests pin down. Like the bank and histogram snapshots it carries
// state only; configuration matching is the caller's contract (the wire
// handshake digests it).
type PipelineSnapshot struct {
	Bank   detector.BankSnapshot
	Buffer flow.Buffer
}

// OpenInterval is the lean drain of a pipeline's open interval: the
// clone-histogram snapshots (one slice per detector in feature order,
// as detector.Bank.DrainInterval returns them) plus the columnar flow
// buffer — and nothing else. It is PipelineSnapshot minus the detection
// history, which on the distributed agent path is dead weight: an agent
// never closes detection, so its reference counts, KL series, and
// threshold samples are permanently zero, and DrainSnapshot deep-copied
// them every interval anyway. The collector absorbs an OpenInterval
// additively (AbsorbOpenInterval), so the drain/ship/absorb cycle never
// touches history on either side.
type OpenInterval struct {
	Clones [][]histogram.Snapshot
	Buffer flow.Buffer
}

// Snapshot captures the pipeline's full state: bank history plus the
// open interval's flow buffer. The result shares no memory with the
// pipeline.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PipelineSnapshot{
		Bank:   p.bank.Snapshot(),
		Buffer: p.buffer.Clone(),
	}
}

// RestoreSnapshot replaces the pipeline's state with s. The pipeline
// must share the snapshot source's configuration (features, detector
// parameters).
func (p *Pipeline) RestoreSnapshot(s PipelineSnapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bank.RestoreSnapshot(s.Bank); err != nil {
		return err
	}
	p.buffer.Reset()
	p.buffer.AppendBuffer(&s.Buffer)
	return nil
}

// DrainSnapshot captures the pipeline's state and then clears the open
// interval — clone histograms reset, flow buffer emptied — leaving the
// pipeline ready to accumulate the next interval without having closed
// detection. Prefer DrainOpenInterval on the distributed agent path: it
// moves the same information without copying the detection history a
// drain never touches. DrainSnapshot remains for callers that need the
// full restorable state (session replay, tests).
func (p *Pipeline) DrainSnapshot() PipelineSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PipelineSnapshot{
		Bank:   p.bank.Snapshot(),
		Buffer: p.buffer.Clone(),
	}
	p.bank.ResetInterval()
	p.buffer.Reset()
	return s
}

// DrainOpenInterval captures the open interval — clone-histogram
// snapshots and the flow buffer — and clears it, leaving detection
// history untouched and uncopied. This is the distributed agent step:
// the agent drains at each interval boundary and ships the result to
// the collector, which folds it into the primary pipeline with
// AbsorbOpenInterval. The result shares no memory with the pipeline.
func (p *Pipeline) DrainOpenInterval() OpenInterval {
	p.mu.Lock()
	defer p.mu.Unlock()
	oi := OpenInterval{
		Clones: p.bank.DrainInterval(),
		Buffer: p.buffer.Clone(),
	}
	p.buffer.Reset()
	return oi
}

// AbsorbOpenInterval folds a drained open interval into p additively:
// clone snapshots merge into the bank's open histograms (the
// mergeable-sketch invariant — identical to having observed the flows
// directly) and the buffered flows append to p's buffer. It is the
// collector-side counterpart of DrainOpenInterval, replacing the former
// restore-into-scratch-then-Absorb round trip. Both sides must share
// the detector configuration and seed.
func (p *Pipeline) AbsorbOpenInterval(oi OpenInterval) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.bank.AbsorbInterval(oi.Clones); err != nil {
		return err
	}
	p.buffer.AppendBuffer(&oi.Buffer)
	return nil
}
