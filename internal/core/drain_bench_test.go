package core

import "testing"

// BenchmarkDrainAbsorbCycle contrasts the two agent→collector interval
// hand-offs over a paper-default pipeline (5 features × 3 clones × 1024
// bins) holding a 5k-flow open interval:
//
//   - snapshot: the former path — DrainSnapshot deep-copies the full
//     bank (detection history included), the collector restores it into
//     a scratch pipeline and Absorbs the scratch into the primary.
//   - open-interval: DrainOpenInterval copies only the clone snapshots
//     and the flow buffer, and AbsorbOpenInterval merges them into the
//     primary additively — no history copy, no scratch restore.
//
// One iteration is one interval hand-off; the per-op allocation gap is
// the history weight the lean path no longer moves.
func BenchmarkDrainAbsorbCycle(b *testing.B) {
	setup := func(b *testing.B) (agent, primary, scratch *Pipeline) {
		b.Helper()
		for _, pp := range []**Pipeline{&agent, &primary, &scratch} {
			p, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(p.Close)
			*pp = p
		}
		return
	}
	recs := snapRecords(0, 5000, false)

	b.Run("snapshot", func(b *testing.B) {
		agent, primary, scratch := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agent.ObserveBatch(recs)
			snap := agent.DrainSnapshot()
			if err := scratch.RestoreSnapshot(snap); err != nil {
				b.Fatal(err)
			}
			if err := primary.Absorb(scratch); err != nil {
				b.Fatal(err)
			}
			if _, err := primary.EndInterval(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("open-interval", func(b *testing.B) {
		agent, primary, _ := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agent.ObserveBatch(recs)
			if err := primary.AbsorbOpenInterval(agent.DrainOpenInterval()); err != nil {
				b.Fatal(err)
			}
			if _, err := primary.EndInterval(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
