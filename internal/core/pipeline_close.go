package core

import (
	"fmt"
	"sync"

	"anomalyx/internal/flow"
	"anomalyx/internal/histogram"
	"anomalyx/internal/prefilter"
)

// intervalState is one pipeline's drained open interval: the detector
// bank's clone histograms and the columnar flow buffer, in the reusable
// containers they travel in. After a finish the histograms are reset
// (their value-table arenas intact) and the buffer's columns keep their
// capacity, so the state cycles through the pipeline's freelist and
// steady-state closes allocate no new buffer or arena memory.
type intervalState struct {
	clones [][]*histogram.Histogram
	buffer flow.Buffer
}

// popSpare takes a recycled interval state off p's freelist, if any.
func (p *Pipeline) popSpare() (intervalState, bool) {
	p.spareMu.Lock()
	defer p.spareMu.Unlock()
	if n := len(p.spares); n > 0 {
		st := p.spares[n-1]
		p.spares[n-1] = intervalState{}
		p.spares = p.spares[:n-1]
		return st, true
	}
	return intervalState{}, false
}

// pushSpare returns a reset interval state to p's freelist.
func (p *Pipeline) pushSpare(st intervalState) {
	p.spareMu.Lock()
	defer p.spareMu.Unlock()
	p.spares = append(p.spares, st)
}

// PendingClose is one drained measurement interval awaiting its finish:
// the cheap synchronous half of a pipelined interval close. BeginClose /
// BeginIntervalGroup swap the open interval's state (clone histograms +
// flow buffer) out of the hot path and return it here; Finish runs the
// expensive half — detection, prefilter, mining — against the drained
// state while new records flow into the swapped-in replacements.
//
// Each PendingClose must be finished exactly once, and finishes of
// successive closes over the same pipelines must run in begin order: the
// detector's KL scheme is sequential (each interval is compared against
// the previous one), so the engine serializes finishes on a single
// close-worker goroutine. Reordering would change reports; ordering
// makes them byte-identical to the synchronous path.
type PendingClose struct {
	group  []*Pipeline
	states []intervalState
}

// BeginClose drains p's open interval — atomically with respect to
// observes — and returns it as a PendingClose whose Finish produces
// exactly the report EndInterval would have. The drain is cheap:
// pointer swaps plus a freelist pop, no detection math.
func (p *Pipeline) BeginClose() (*PendingClose, error) {
	return BeginIntervalGroup(p.selfGroup)
}

// BeginIntervalGroup drains one measurement interval in lockstep across
// a group of shard pipelines — the pipelined counterpart of
// EndIntervalGroup. Every shard's clone histograms and flow buffer are
// swapped for reset recycled ones under the shard's lock; the expensive
// merge + detection + extraction runs later in Finish. Every pipeline
// must share the detector configuration, and the pipelines must not
// observe flows concurrently with the drain of the same boundary (the
// shard package serializes this).
func BeginIntervalGroup(group []*Pipeline) (*PendingClose, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("core: empty pipeline group")
	}
	for i := range group {
		for j := i + 1; j < len(group); j++ {
			if group[i] == group[j] {
				return nil, fmt.Errorf("core: duplicate pipeline in group")
			}
		}
	}
	pc := &PendingClose{group: group, states: make([]intervalState, len(group))}
	for i, p := range group {
		p.mu.Lock()
		st, _ := p.popSpare()
		st.clones = p.bank.SwapInterval(st.clones)
		st.buffer, p.buffer = p.buffer, st.buffer
		pc.states[i] = st
		p.mu.Unlock()
	}
	return pc, nil
}

// Finish completes a drained interval close: merges the shards' drained
// clone histograms into the primary's in shard order (exact mergeable
// sketches), closes detection over the merged state against the primary
// bank's history, and on an alarm prefilters each shard's drained buffer
// concurrently with the per-shard suspicious sets concatenated in shard
// order — step for step the math of EndInterval / EndIntervalGroup, so
// the report is byte-identical to the synchronous close. The drained
// containers are reset and recycled onto their pipelines' freelists
// before returning.
//
// Finish never touches the pipelines' live state (buffers, current
// histograms), so it may run concurrently with observes; it does touch
// the primary bank's detection history, so Finish calls for successive
// closes must be serialized in begin order.
func (pc *PendingClose) Finish() (*Report, error) {
	primary := pc.group[0]
	merged := pc.states[0].clones
	if len(pc.states) > 1 {
		siblings := make([][][]*histogram.Histogram, len(pc.states)-1)
		for si := 1; si < len(pc.states); si++ {
			siblings[si-1] = pc.states[si].clones
		}
		// Parallel fold, one task per detector — byte-identical to the
		// serial sibling merge (see Bank.MergeDrained).
		primary.bank.MergeDrained(merged, siblings)
	}
	det := primary.bank.FinishInterval(merged)
	total := 0
	for i := range pc.states {
		total += pc.states[i].buffer.Len()
	}
	rep := &Report{
		Interval:   det.Interval,
		Detection:  det,
		Alarm:      det.Alarm,
		TotalFlows: total,
	}
	if det.Alarm && det.Meta.Count() > 0 {
		parts := make([][]flow.Record, len(pc.states))
		var wg sync.WaitGroup
		for i := range pc.states {
			if pc.states[i].buffer.Len() == 0 {
				continue
			}
			wg.Add(1)
			go func(i int, sh *Pipeline) {
				defer wg.Done()
				parts[i] = prefilter.FilterBufferParallel(sh.cfg.Prefilter, det.Meta, &pc.states[i].buffer, sh.cfg.Workers)
			}(i, pc.group[i])
		}
		wg.Wait()
		n := 0
		for _, part := range parts {
			n += len(part)
		}
		// Keep the no-match case nil, as the sequential Filter returns it.
		var suspicious []flow.Record
		if n > 0 {
			suspicious = make([]flow.Record, 0, n)
			for _, part := range parts {
				suspicious = append(suspicious, part...)
			}
		}
		if err := finishExtract(primary.cfg, rep, suspicious); err != nil {
			return nil, err
		}
	}
	for i := range pc.states {
		st := &pc.states[i]
		if i > 0 {
			// The primary's histograms were reset by the bank's rotate;
			// the siblings' still hold the counts Merge read.
			for _, set := range st.clones {
				for _, h := range set {
					h.Reset()
				}
			}
		}
		st.buffer.Reset()
		pc.group[i].pushSpare(*st)
		*st = intervalState{}
	}
	return rep, nil
}
