package core

import (
	"reflect"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
)

// snapRecords synthesizes one interval's records with a stable popular
// structure and an optional dstPort flood.
func snapRecords(interval, n int, flood bool) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			SrcAddr: uint32(i%89) + 1,
			DstAddr: uint32(i%71) + 1,
			SrcPort: uint16(i % 47),
			DstPort: uint16(i % 29),
			Packets: uint32(i%5) + 1,
			Bytes:   uint64(i%11)*40 + 40,
			Start:   int64(interval) * 1000,
		}
		if flood && i%2 == 0 {
			recs[i].DstAddr, recs[i].DstPort = 42, 31337
			recs[i].Packets, recs[i].Bytes = 1, 40
		}
	}
	return recs
}

func snapConfig() Config {
	return Config{Detector: detector.Config{Bins: 64, TrainIntervals: 3, Seed: 9}}
}

// TestPipelineSnapshotRestore: a restored pipeline carries the full
// detection history and the open interval's flow buffer, so subsequent
// reports — including an alarming interval's extraction — match the
// original exactly.
func TestPipelineSnapshotRestore(t *testing.T) {
	orig, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for i := 0; i < 6; i++ {
		if _, err := orig.ProcessInterval(snapRecords(i, 900, false)); err != nil {
			t.Fatal(err)
		}
	}
	orig.ObserveBatch(snapRecords(6, 400, false))

	s := orig.Snapshot()
	if s.Buffer.Len() != 400 {
		t.Fatalf("snapshot buffer has %d records, want 400", s.Buffer.Len())
	}
	restored, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.RestoreSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Snapshot(), s) {
		t.Fatal("restored pipeline re-snapshots differently")
	}
	alarmed := false
	for i := 6; i < 10; i++ {
		rest := snapRecords(i, 900, i == 7)
		if i == 6 {
			rest = rest[400:]
		}
		orig.ObserveBatch(rest)
		restored.ObserveBatch(rest)
		want, err := orig.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		alarmed = alarmed || want.Alarm
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d diverged after restore:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if !alarmed {
		t.Fatal("post-restore intervals never alarmed; extraction not compared")
	}
}

// TestPipelineDrainSnapshot: draining captures bank state and buffer,
// then leaves the pipeline empty for the next interval — and an
// absorb-after-restore of the drained state reproduces a direct run.
func TestPipelineDrainSnapshot(t *testing.T) {
	direct, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	agent, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	primary, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	scratch, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer scratch.Close()

	for i := 0; i < 7; i++ {
		recs := snapRecords(i, 900, i == 5)
		direct.ObserveBatch(recs)
		agent.ObserveBatch(recs)

		snap := agent.DrainSnapshot()
		if snap.Buffer.Len() != len(recs) {
			t.Fatalf("interval %d: drained %d records, want %d", i, snap.Buffer.Len(), len(recs))
		}
		// The drained pipeline is empty: an immediate re-drain carries
		// nothing.
		if rd := agent.DrainSnapshot(); rd.Buffer.Len() != 0 {
			t.Fatalf("interval %d: re-drain still holds %d records", i, rd.Buffer.Len())
		}
		for _, ds := range snap.Bank.Detectors {
			for _, hs := range ds.Clones {
				if hs.Total == 0 {
					t.Fatalf("interval %d: drained snapshot has empty clone", i)
				}
			}
		}
		if err := scratch.RestoreSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		if err := primary.Absorb(scratch); err != nil {
			t.Fatal(err)
		}
		want, err := direct.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		got, err := primary.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: absorb-of-drain diverged from direct run:\n got %+v\nwant %+v",
				i, got, want)
		}
	}
}

// TestPipelineDrainOpenInterval: the lean agent-path drain carries the
// open interval — clone snapshots plus buffer, no detection history —
// and absorbing it additively reproduces a direct run exactly, interval
// after interval (the drained pipeline starts each one empty).
func TestPipelineDrainOpenInterval(t *testing.T) {
	direct, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	agent, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	primary, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	for i := 0; i < 7; i++ {
		recs := snapRecords(i, 900, i == 5)
		direct.ObserveBatch(recs)
		agent.ObserveBatch(recs)

		oi := agent.DrainOpenInterval()
		if oi.Buffer.Len() != len(recs) {
			t.Fatalf("interval %d: drained %d records, want %d", i, oi.Buffer.Len(), len(recs))
		}
		if rd := agent.DrainOpenInterval(); rd.Buffer.Len() != 0 {
			t.Fatalf("interval %d: re-drain still holds %d records", i, rd.Buffer.Len())
		}
		if len(oi.Clones) == 0 {
			t.Fatalf("interval %d: drained no detector clones", i)
		}
		for _, clones := range oi.Clones {
			for _, hs := range clones {
				if hs.Total == 0 {
					t.Fatalf("interval %d: drained open interval has empty clone", i)
				}
			}
		}
		if err := primary.AbsorbOpenInterval(oi); err != nil {
			t.Fatal(err)
		}
		want, err := direct.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		got, err := primary.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("interval %d: absorb-of-open-interval diverged from direct run:\n got %+v\nwant %+v",
				i, got, want)
		}
	}
}

// TestAbsorbOpenIntervalRejectsShape: absorbing an open interval drained
// from a differently configured pipeline errors instead of corrupting
// the bank.
func TestAbsorbOpenIntervalRejectsShape(t *testing.T) {
	cfg := snapConfig()
	cfg.Features = []flow.FeatureKind{flow.SrcIP, flow.DstIP}
	narrow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer narrow.Close()
	narrow.ObserveBatch(snapRecords(0, 100, false))

	p, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.AbsorbOpenInterval(narrow.DrainOpenInterval()); err == nil {
		t.Error("absorb across feature sets accepted")
	}
}

// TestPipelineRestoreRejectsShape: restoring across configurations
// errors instead of corrupting state.
func TestPipelineRestoreRejectsShape(t *testing.T) {
	p, err := New(snapConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.ObserveBatch(snapRecords(0, 100, false))
	s := p.Snapshot()

	cfg := snapConfig()
	cfg.Features = []flow.FeatureKind{flow.SrcIP, flow.DstIP}
	other, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.RestoreSnapshot(s); err == nil {
		t.Error("restore across feature sets accepted")
	}
}
