package core

import (
	"math"
	"testing"

	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/mining/eclat"
	"anomalyx/internal/mining/fpgrowth"
	"anomalyx/internal/prefilter"
	"anomalyx/internal/stats"
	"anomalyx/internal/tracegen"
)

func testConfig() Config {
	return Config{
		Features: []flow.FeatureKind{flow.DstIP, flow.DstPort, flow.Packets},
		Detector: detector.Config{
			Bins: 256, Clones: 3, Votes: 3, TrainIntervals: 8,
		},
		RelativeSupport: 0.05,
	}
}

// synthInterval produces n stable benign flows plus optionally nAnom
// flood flows toward one victim.
func synthInterval(p *Pipeline, r *stats.Rand, n, nAnom int) (*Report, error) {
	for i := 0; i < nAnom; i++ {
		p.Observe(flow.Record{
			SrcAddr: uint32(r.IntN(1 << 30)), DstAddr: 0x0a0a0a0a,
			SrcPort: uint16(1024 + r.IntN(60000)), DstPort: 7000,
			Protocol: 6, Packets: 1, Bytes: 40,
		})
	}
	for i := 0; i < n; i++ {
		p.Observe(flow.Record{
			SrcAddr: uint32(r.IntN(4096)), DstAddr: uint32(r.IntN(512)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1000)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(5000)),
		})
	}
	return p.EndInterval()
}

func TestPipelineConfigValidation(t *testing.T) {
	if _, err := New(Config{MinSupport: -1}); err == nil {
		t.Error("negative support accepted")
	}
	if _, err := New(Config{RelativeSupport: 1.5}); err == nil {
		t.Error("relative support > 1 accepted")
	}
	if _, err := New(Config{Detector: detector.Config{Clones: 1, Votes: 2}}); err == nil {
		t.Error("bad detector config accepted")
	}
	p, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().Miner == nil || p.Config().Prefilter == nil {
		t.Error("defaults not applied")
	}
	if p.Config().Miner.Name() != "apriori" {
		t.Errorf("default miner %q", p.Config().Miner.Name())
	}
}

func TestPipelineEndToEndExtractsFlood(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(1)
	for i := 0; i < 20; i++ {
		rep, err := synthInterval(p, r, 5000, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalFlows != 5000 {
			t.Fatalf("TotalFlows = %d", rep.TotalFlows)
		}
	}
	rep, err := synthInterval(p, r, 5000, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Fatal("flood not detected")
	}
	if rep.SuspiciousFlows == 0 {
		t.Fatal("prefilter selected nothing")
	}
	if rep.SuspiciousFlows > rep.TotalFlows/2 {
		t.Errorf("prefilter kept %d of %d flows; should remove most benign traffic",
			rep.SuspiciousFlows, rep.TotalFlows)
	}
	if len(rep.ItemSets) == 0 {
		t.Fatal("no item-sets extracted")
	}
	// The top item-set must pinpoint the flood.
	found := false
	for i := range rep.ItemSets {
		hasVictim, hasPort := false, false
		for _, it := range rep.ItemSets[i].Items {
			if it.Kind == flow.DstIP && it.Value == 0x0a0a0a0a {
				hasVictim = true
			}
			if it.Kind == flow.DstPort && it.Value == 7000 {
				hasPort = true
			}
		}
		if hasVictim && hasPort {
			found = true
		}
	}
	if !found {
		t.Errorf("flood item-set not extracted: %v", rep.ItemSets)
	}
	if rep.CostReduction <= 1 {
		t.Errorf("cost reduction %v, want > 1", rep.CostReduction)
	}
	if math.IsInf(rep.CostReduction, 1) {
		t.Error("cost reduction infinite despite item-sets")
	}
}

func TestPipelineQuietIntervalNoMining(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(2)
	var last *Report
	for i := 0; i < 15; i++ {
		rep, err := synthInterval(p, r, 4000, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = rep
	}
	if last.Alarm {
		t.Skip("rare benign alarm; acceptable at 3 sigma")
	}
	if last.Mining != nil || len(last.ItemSets) != 0 || last.SuspiciousFlows != 0 {
		t.Error("quiet interval should not mine")
	}
}

func TestPipelineBufferCleared(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(3)
	rep1, _ := synthInterval(p, r, 1000, 0)
	rep2, _ := synthInterval(p, r, 2000, 0)
	if rep1.TotalFlows != 1000 || rep2.TotalFlows != 2000 {
		t.Errorf("buffer leak: %d then %d", rep1.TotalFlows, rep2.TotalFlows)
	}
}

func TestPipelineKeepSuspicious(t *testing.T) {
	cfg := testConfig()
	cfg.KeepSuspicious = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(4)
	for i := 0; i < 20; i++ {
		synthInterval(p, r, 5000, 0)
	}
	rep, err := synthInterval(p, r, 5000, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Fatal("no alarm")
	}
	if len(rep.Suspicious) != rep.SuspiciousFlows {
		t.Errorf("kept %d flows, reported %d", len(rep.Suspicious), rep.SuspiciousFlows)
	}
}

func TestPipelineAbsoluteSupport(t *testing.T) {
	cfg := testConfig()
	cfg.MinSupport = 1200
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(5)
	for i := 0; i < 20; i++ {
		synthInterval(p, r, 5000, 0)
	}
	rep, err := synthInterval(p, r, 5000, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Fatal("no alarm")
	}
	if rep.MinSupport != 1200 {
		t.Errorf("MinSupport = %d, want 1200", rep.MinSupport)
	}
	for i := range rep.ItemSets {
		if rep.ItemSets[i].Support < 1200 {
			t.Errorf("item-set below support: %v", rep.ItemSets[i])
		}
	}
}

func TestPipelineAlternativeMiners(t *testing.T) {
	for _, m := range []Config{
		{Miner: fpgrowth.New()},
		{Miner: eclat.New()},
	} {
		cfg := testConfig()
		cfg.Miner = m.Miner
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := stats.NewRand(6)
		for i := 0; i < 20; i++ {
			synthInterval(p, r, 4000, 0)
		}
		rep, err := synthInterval(p, r, 4000, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Alarm || len(rep.ItemSets) == 0 {
			t.Errorf("miner %s failed to extract", cfg.Miner.Name())
		}
	}
}

func TestExtractOffline(t *testing.T) {
	d := tracegen.SasserScenario(7, 4000)
	meta := detector.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			meta.Add(fv.Kind, fv.Value)
		}
	}
	cfg := Config{RelativeSupport: 0.02}
	rep, err := ExtractOffline(cfg, d.Flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuspiciousFlows == 0 {
		t.Fatal("offline extraction selected nothing")
	}
	if len(rep.ItemSets) == 0 {
		t.Fatal("offline extraction mined nothing")
	}
	// The scan stage (the biggest) must surface: dstPort 445.
	found := false
	for i := range rep.ItemSets {
		for _, it := range rep.ItemSets[i].Items {
			if it.Kind == flow.DstPort && it.Value == tracegen.SasserScanPort {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("scan stage not in item-sets: %v", rep.ItemSets)
	}
}

func TestExtractOfflineIntersectionMissesSasser(t *testing.T) {
	// End-to-end confirmation of §II-A: with the intersection strategy
	// the multistage worm yields nothing.
	d := tracegen.SasserScenario(8, 3000)
	meta := detector.NewMetaData()
	for _, stage := range d.Meta {
		for _, fv := range stage {
			meta.Add(fv.Kind, fv.Value)
		}
	}
	cfg := Config{Prefilter: prefilter.Intersection{}, RelativeSupport: 0.02}
	rep, err := ExtractOffline(cfg, d.Flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuspiciousFlows != 0 {
		t.Errorf("intersection selected %d flows", rep.SuspiciousFlows)
	}
	if len(rep.ItemSets) != 0 {
		t.Errorf("intersection extracted %d item-sets", len(rep.ItemSets))
	}
	if !math.IsInf(rep.CostReduction, 1) {
		t.Errorf("empty output should give +Inf reduction, got %v", rep.CostReduction)
	}
}

func TestExtractOfflineEmptyMeta(t *testing.T) {
	rep, err := ExtractOffline(Config{}, []flow.Record{{DstPort: 80}}, detector.NewMetaData())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuspiciousFlows != 0 || rep.Mining != nil {
		t.Error("empty meta-data should select and mine nothing")
	}
}

func TestQuantizeSizesAggregatesFragmentedSupport(t *testing.T) {
	// 900 flows of a size-varying anomaly (packets 33..40): exact-value
	// mining fragments them below minsup 300; quantized mining buckets
	// them all into packets=32 and finds the item-set.
	meta := detector.NewMetaData()
	meta.Add(flow.DstPort, 4444)
	var flows []flow.Record
	for i := 0; i < 900; i++ {
		flows = append(flows, flow.Record{
			SrcAddr: uint32(i), DstAddr: 7, DstPort: 4444, Protocol: 6,
			Packets: uint32(33 + i%8), Bytes: uint64(5000 + i),
		})
	}
	exact, err := ExtractOffline(Config{MinSupport: 300}, flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	quantized, err := ExtractOffline(Config{MinSupport: 300, QuantizeSizes: true}, flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	hasPacketsItem := func(rep *Report, val uint64) bool {
		for i := range rep.ItemSets {
			for _, it := range rep.ItemSets[i].Items {
				if it.Kind == flow.Packets && it.Value == val {
					return true
				}
			}
		}
		return false
	}
	if hasPacketsItem(exact, 32) {
		t.Error("exact mining should not produce the bucket item")
	}
	if !hasPacketsItem(quantized, 32) {
		t.Errorf("quantized mining missing packets=32: %v", quantized.ItemSets)
	}
}

func TestPipelineEmptyIntervals(t *testing.T) {
	// Intervals with zero flows must not panic or produce NaN state;
	// detection over empty histograms is a no-op.
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		rep, err := p.EndInterval()
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalFlows != 0 {
			t.Fatal("phantom flows")
		}
		if rep.Alarm {
			t.Fatal("alarm on empty traffic")
		}
	}
	// Traffic appearing after a long silence behaves sanely too.
	r := stats.NewRand(9)
	rep, err := synthInterval(p, r, 3000, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = rep // first real interval may alarm (silence -> traffic is a change); no panic is the contract
}

func TestPipelineSingleFlowInterval(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p.Observe(flow.Record{DstPort: 80, Protocol: 6, Packets: 1, Bytes: 40})
		if _, err := p.EndInterval(); err != nil {
			t.Fatal(err)
		}
	}
}
