package core_test

import (
	"reflect"
	"testing"

	"anomalyx/internal/core"
	"anomalyx/internal/detector"
	"anomalyx/internal/flow"
	"anomalyx/internal/shard"
	"anomalyx/internal/tracegen"
)

// diffTrace is the differential harness's workload: seeded tracegen
// traffic with an injected dstPort flood in interval floodAt, so the
// extraction stage actually runs on some intervals.
func diffTrace(intervals, baseFlows, floodAt int) [][]flow.Record {
	cfg := tracegen.SmallConfig()
	cfg.Intervals = intervals
	cfg.BaseFlows = baseFlows
	cfg.Events = tracegen.Schedule(cfg.Intervals, cfg.BaseFlows)
	gen := tracegen.New(cfg)
	out := make([][]flow.Record, intervals)
	for i := range out {
		recs := gen.Interval(i)
		if i == floodAt {
			for j := range recs {
				if j%3 == 0 {
					recs[j].DstAddr, recs[j].DstPort = 42, 31337
					recs[j].Packets, recs[j].Bytes = 1, 40
				}
			}
		}
		out[i] = recs
	}
	return out
}

// TestPipelineMatchesAoSReference is the differential harness for the
// columnar buffer: across the full (shards, workers) grid, every
// alarming interval's extraction — run online over the pipeline's SoA
// flow.Buffer through the columnar prefilter scan — must agree exactly
// with core.ExtractOffline, the retained row-form (AoS) path that
// filters a plain []flow.Record sequentially, given the same records
// and the interval's voted meta-data. For the unsharded runs the
// KeepSuspicious forensic slice must match record for record, order
// included (sharding regroups that one slice by shard; counts and
// item-sets still pin it).
func TestPipelineMatchesAoSReference(t *testing.T) {
	trace := diffTrace(10, 3000, 8)
	pcfg := core.Config{
		Detector:       detector.Config{Bins: 256, TrainIntervals: 4, Seed: 3},
		KeepSuspicious: true,
	}
	refCfg := pcfg
	refCfg.Workers = 1 // the AoS reference stays sequential

	alarmsChecked := 0
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 4, 8} {
			cfg := pcfg
			cfg.Workers = workers
			sp, err := shard.New(shard.Config{Shards: shards, Pipeline: cfg})
			if err != nil {
				t.Fatal(err)
			}
			for i, recs := range trace {
				rep, err := sp.ProcessInterval(recs)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Alarm {
					continue
				}
				alarmsChecked++
				ref, err := core.ExtractOffline(refCfg, recs, rep.Detection.Meta)
				if err != nil {
					t.Fatal(err)
				}
				if rep.SuspiciousFlows != ref.SuspiciousFlows {
					t.Fatalf("shards=%d workers=%d interval %d: SoA selected %d suspicious flows, AoS reference %d",
						shards, workers, i, rep.SuspiciousFlows, ref.SuspiciousFlows)
				}
				if rep.MinSupport != ref.MinSupport || rep.CostReduction != ref.CostReduction {
					t.Fatalf("shards=%d workers=%d interval %d: minsup/cost (%d, %v) vs AoS (%d, %v)",
						shards, workers, i, rep.MinSupport, rep.CostReduction, ref.MinSupport, ref.CostReduction)
				}
				if !reflect.DeepEqual(rep.ItemSets, ref.ItemSets) {
					t.Fatalf("shards=%d workers=%d interval %d: item-sets diverged\ngot:  %+v\nwant: %+v",
						shards, workers, i, rep.ItemSets, ref.ItemSets)
				}
				if !reflect.DeepEqual(rep.Mining, ref.Mining) {
					t.Fatalf("shards=%d workers=%d interval %d: mining result diverged", shards, workers, i)
				}
				if shards == 1 && !reflect.DeepEqual(rep.Suspicious, ref.Suspicious) {
					t.Fatalf("workers=%d interval %d: suspicious slice diverged from the AoS reference (%d vs %d records)",
						workers, i, len(rep.Suspicious), len(ref.Suspicious))
				}
			}
			sp.Close()
		}
	}
	if alarmsChecked == 0 {
		t.Fatal("no interval alarmed; the differential never compared extraction")
	}
}
