package lint

import (
	"go/ast"
	"go/types"
)

// Goroutines enforces the "fan-ins are sequenced" bullet of the
// determinism contract by construction: every goroutine spawn and every
// channel make must live in one of the audited concurrency packages,
// whose merge points are proven deterministic by parity tests and fuzz
// targets. New fan-out anywhere else is a lint failure until its merge
// is audited (add the package here) or the site carries a justified
// //detlint:ok goroutines directive.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "goroutine spawns and channel makes only in audited concurrency packages",
	Run:  runGoroutines,
}

// auditedConcurrency lists the packages (relative to the module root)
// whose fan-out/fan-in discipline is pinned by determinism tests; see
// docs/ARCHITECTURE.md "The determinism contract".
var auditedConcurrency = []string{
	"internal/engine",
	"internal/detector",
	"internal/shard",
	"internal/prefilter",
	"internal/mining/eclat",
	"internal/wire",
	"internal/core",
}

func runGoroutines(pkg *Package, report ReportFunc) {
	for _, rel := range auditedConcurrency {
		if pkg.Path == pkg.ModulePath+"/"+rel {
			return
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Go, "go statement outside the audited concurrency packages; fan-out belongs in engine/detector/shard/prefilter/mining/eclat/wire/core where the merge order is pinned by tests")
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || id.Name != "make" || len(n.Args) == 0 {
					return true
				}
				if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
					return true
				}
				t := typeOf(pkg, n.Args[0])
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "make(chan) outside the audited concurrency packages; new plumbing needs an audited merge point or a //detlint:ok goroutines -- <reason>")
				}
			}
			return true
		})
	}
}
