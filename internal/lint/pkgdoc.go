package lint

import (
	"go/ast"
	"regexp"
)

// PkgDoc subsumes the old scripts/doclint.sh: every package must carry a
// package comment, and that comment must state the package's
// determinism/ordering guarantees — the contract of docs/ARCHITECTURE.md
// is kept package by package, so each package says which side of it it
// is on (sorted boundaries, order-insensitive merges, seeded hashing,
// pure functions of the input, …). For the public boundary — the root
// facade and internal/wire, whose exported surface other processes and
// embedders program against — every exported identifier must carry a doc
// comment as well.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "package comments must exist and state determinism/ordering guarantees",
	Run:  runPkgDoc,
}

// noteRE recognizes a determinism/ordering note. Deliberately lenient:
// the goal is that each package states its guarantee in its own words,
// not that it recites a fixed formula.
var noteRE = regexp.MustCompile(`(?i)\b(determinis\w*|byte-identical|reproducib\w*|sort\w*|order\w*|canonical\w*|commut\w*|sequenc\w*|seed\w*|stateless|pure)\b`)

func runPkgDoc(pkg *Package, report ReportFunc) {
	var doc *ast.File
	for _, f := range pkg.Files {
		if f.Doc != nil {
			doc = f
			break
		}
	}
	if doc == nil {
		report(pkg.Files[0].Package, "package %s has no package comment; add one stating its role and its determinism/ordering guarantees (docs/ARCHITECTURE.md \"The determinism contract\")", pkg.Types.Name())
		return
	}
	if !noteRE.MatchString(doc.Doc.Text()) {
		report(doc.Package, "package comment of %s has no determinism/ordering note; state how the package keeps (or stays out of) the contract of docs/ARCHITECTURE.md \"The determinism contract\"", pkg.Types.Name())
	}
	if pkg.Path == pkg.ModulePath || pkg.Path == pkg.ModulePath+"/internal/wire" {
		checkExportedDocs(pkg, report)
	}
}

// checkExportedDocs requires a doc comment on every exported top-level
// identifier — functions, methods on exported types, type specs, and
// const/var specs (a shared doc on the enclosing decl counts).
func checkExportedDocs(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if recv := receiverTypeName(d); recv != "" && !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "exported %s %s has no doc comment (required on the %s boundary)", funcKind(d), d.Name.Name, pkg.Path)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
							report(s.Pos(), "exported type %s has no doc comment (required on the %s boundary)", s.Name.Name, pkg.Path)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || d.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(n.Pos(), "exported value %s has no doc comment (required on the %s boundary)", n.Name, pkg.Path)
							}
						}
					}
				}
			}
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// receiverTypeName unwraps the receiver's base type name, or "" for a
// plain function.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
