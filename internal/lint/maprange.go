package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange enforces the "reads are sorted at the boundary" bullet of the
// determinism contract: map iteration order is random, so any `for …
// range` over a map-typed value in non-test code must either be followed
// immediately by a sort of what the loop accumulated or carry a
// //detlint:ok maprange directive explaining why order cannot leak into
// a report or snapshot.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "ranges over maps must sort at the boundary or justify themselves",
	Run:  runMapRange,
}

func runMapRange(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, st := range list {
				rs, ok := st.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := typeOf(pkg, rs.X)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					continue
				}
				var next ast.Stmt
				if i+1 < len(list) {
					next = list[i+1]
				}
				if isSortCall(pkg, next) {
					continue
				}
				report(rs.For, "range over map %s: iteration order is nondeterministic; sort at the boundary (next statement) or add //detlint:ok maprange -- <reason>", types.ExprString(rs.X))
			}
			return true
		})
	}
}

// isSortCall reports whether st is a call into package sort, or a
// slices.Sort* call — the "sorted at the boundary" idiom, where the
// statement directly after the loop orders whatever the loop
// accumulated.
func isSortCall(pkg *Package, st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
