package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"anomalyx/internal/lint"
)

// sharedLoader amortizes source-mode stdlib typechecking across the
// fixture tests; Go tests within a package run sequentially, so plain
// lazy initialization is safe.
var sharedLoader *lint.Loader

func loader() *lint.Loader {
	if sharedLoader == nil {
		sharedLoader = lint.NewLoader()
	}
	return sharedLoader
}

// want is one expected finding: a `// want "substring"` annotation on
// the line the finding must land on. The substring is matched against
// "analyzer: message".
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`want "([^"]+)"`)

// collectWants extracts the annotations from a loaded fixture package.
func collectWants(pkg *lint.Package) []*want {
	var ws []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					ws = append(ws, &want{file: pos.Filename, line: pos.Line, substr: m[1]})
				}
			}
		}
	}
	return ws
}

// runFixture loads testdata/src/<dir> under the given fake import path,
// runs the full analyzer suite, and requires the findings to match the
// fixture's want annotations exactly — every annotation hit, no
// unexpected findings.
func runFixture(t *testing.T, dir, importPath string) {
	t.Helper()
	pkg, err := loader().LoadDir(filepath.Join("testdata", "src", dir), "anomalyx", importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	findings := lint.Check(pkg)
	wants := collectWants(pkg)

	for _, f := range findings {
		text := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		hit := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && strings.Contains(text, w.substr) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.substr)
		}
	}
}

func TestMapRangeFixture(t *testing.T) {
	runFixture(t, "maprange", "anomalyx/internal/maprangefix")
}

func TestWallClockFixture(t *testing.T) {
	runFixture(t, "wallclock", "anomalyx/internal/wallclockfix")
}

func TestWallClockAllowlistFixture(t *testing.T) {
	// Loaded under cmd/, where the wallclock policy is exempt: the
	// fixture has wall-clock reads and zero want annotations.
	runFixture(t, "wallclock_allowed", "anomalyx/cmd/wallclockallowed")
}

func TestGoroutinesFixture(t *testing.T) {
	runFixture(t, "goroutines", "anomalyx/internal/gofix")
}

func TestGoroutinesAuditedFixture(t *testing.T) {
	// Loaded under an audited concurrency path: spawns and channel
	// makes are permitted, so the fixture expects zero findings.
	runFixture(t, "goroutines_allowed", "anomalyx/internal/engine")
}

func TestPkgDocMissingFixture(t *testing.T) {
	runFixture(t, "pkgdoc_missing", "anomalyx/internal/pkgdocmissing")
}

func TestPkgDocNoNoteFixture(t *testing.T) {
	runFixture(t, "pkgdoc_nonote", "anomalyx/internal/pkgdocnonote")
}

func TestPkgDocExportedFixture(t *testing.T) {
	// Loaded as internal/wire, one of the two strict-boundary paths
	// where every exported identifier needs a doc comment.
	runFixture(t, "pkgdoc_exported", "anomalyx/internal/wire")
}

func TestStaleDirectiveFixture(t *testing.T) {
	runFixture(t, "staledirective", "anomalyx/internal/stalefix")
}

// TestSuppressionRequiresMatchingAnalyzer pins the cross-analyzer rule:
// a directive only suppresses findings of the analyzer it names.
func TestSuppressionRequiresMatchingAnalyzer(t *testing.T) {
	pkg, err := loader().LoadDir(filepath.Join("testdata", "src", "staledirective"), "anomalyx", "anomalyx/internal/stalefix2")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range lint.Check(pkg) {
		if f.Analyzer == lint.StaleDirectiveName && strings.Contains(f.Message, "suppresses no") {
			return // the stale directive surfaced as its own finding
		}
	}
	t.Fatal("expected a staledirective finding from the stale suppression")
}
