// Package lint implements detlint, the analyzer suite that enforces the
// determinism contract of docs/ARCHITECTURE.md at the source level. Each
// Analyzer turns one prose bullet of the contract into a machine-checked
// rule: maprange (map iteration must be sorted at the boundary),
// wallclock (no wall-clock or seedless randomness in determinism-critical
// packages), goroutines (fan-out only in the audited concurrency
// packages), and pkgdoc (every package documents its role and its
// determinism/ordering guarantees). A finding is suppressed by a
// `//detlint:ok <analyzer> -- <reason>` directive on the offending line
// or the line above; the reason is mandatory, and a directive that
// suppresses nothing is itself a finding (staledirective), so
// suppressions cannot outlive the code they excused.
//
// The package is deterministic by construction: findings are sorted by
// position before they are returned (reads sorted at the boundary), and
// it depends only on the standard library's go/ast, go/parser, go/types,
// and go/importer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical file:line:col: analyzer:
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// ReportFunc records one finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Analyzer is one determinism-contract rule. Run inspects a typechecked
// package and reports findings; it must visit files in Package.Files
// order and must not depend on map iteration order (the framework sorts
// findings, but analyzer-internal choices must be deterministic too).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkg *Package, report ReportFunc)
}

// StaleDirectiveName is the analyzer name under which directive-hygiene
// findings (malformed or unused //detlint:ok directives) are reported.
// It is not itself suppressible.
const StaleDirectiveName = "staledirective"

// All returns the analyzer suite in its fixed run order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, WallClock, Goroutines, PkgDoc}
}

// suppressibleNames are the analyzer names a //detlint:ok directive may
// name.
func suppressibleNames() []string {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// directive is one parsed //detlint:ok comment.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
	problem  string // non-empty: malformed, reported instead of honored
	used     bool
}

// parseDirectives extracts every //detlint:ok directive from the
// package's comments, in file/position order.
func parseDirectives(pkg *Package) []*directive {
	var ds []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//detlint:ok")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{file: pos.Filename, line: pos.Line}
				name, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					d.problem = "directive names no analyzer; use //detlint:ok <analyzer> -- <reason>"
				case !isSuppressible(name):
					d.problem = fmt.Sprintf("directive names unknown or unsuppressible analyzer %q (known: %s)",
						name, strings.Join(suppressibleNames(), ", "))
				case !hasReason || reason == "":
					d.problem = fmt.Sprintf("directive for %q has no reason; the reason after ' -- ' is mandatory", name)
				default:
					d.analyzer = name
					d.reason = reason
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

func isSuppressible(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Check runs the full analyzer suite over pkg, applies //detlint:ok
// suppressions, appends directive-hygiene findings, and returns the
// surviving findings sorted by file, line, column, and analyzer.
func Check(pkg *Package) []Finding {
	var findings []Finding
	for _, a := range All() {
		name := a.Name
		a.Run(pkg, func(pos token.Pos, format string, args ...any) {
			p := pkg.Fset.Position(pos)
			findings = append(findings, Finding{
				Analyzer: name,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}

	directives := parseDirectives(pkg)
	kept := findings[:0]
	for _, f := range findings {
		if suppressed(f, directives) {
			continue
		}
		kept = append(kept, f)
	}
	findings = kept

	for _, d := range directives {
		switch {
		case d.problem != "":
			findings = append(findings, Finding{
				Analyzer: StaleDirectiveName, File: d.file, Line: d.line, Col: 1,
				Message: d.problem,
			})
		case !d.used:
			findings = append(findings, Finding{
				Analyzer: StaleDirectiveName, File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("directive suppresses no %s finding; delete it (suppressions must not outlive the code they excused)", d.analyzer),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// suppressed reports whether a valid directive covers f — same analyzer,
// same file, on the finding's line or the line directly above — and
// marks every covering directive used.
func suppressed(f Finding, directives []*directive) bool {
	ok := false
	for _, d := range directives {
		if d.problem != "" || d.analyzer != f.Analyzer || d.file != f.File {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			d.used = true
			ok = true
		}
	}
	return ok
}

// pkgPathIn reports whether pkg's import path is path itself or any
// package under path (a "/..." style prefix match on path boundaries).
func pkgPathIn(pkg *Package, path string) bool {
	return pkg.Path == path || strings.HasPrefix(pkg.Path, path+"/")
}

// typeOf is Info.TypeOf with a nil guard for robustness against partial
// type information.
func typeOf(pkg *Package, e ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	return pkg.Info.TypeOf(e)
}
