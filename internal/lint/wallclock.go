package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// WallClock enforces the reproducibility side of the determinism
// contract: determinism-critical packages may not read the wall clock
// (time.Now, time.Since) or draw from math/rand's seedless global source
// — identical inputs must yield byte-identical reports on every run.
// Only the operational edges are exempt: cmd/ (progress timing),
// internal/experiments and internal/tracegen (scenario generation), and
// internal/stats/rand.go (the one audited seeded-randomness shim).
// Explicitly seeded sources (rand.New, rand.NewPCG, …) and *rand.Rand
// methods are fine everywhere — seeding is what makes them reproducible.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall clock or seedless randomness in determinism-critical packages",
	Run:  runWallClock,
}

func runWallClock(pkg *Package, report ReportFunc) {
	mp := pkg.ModulePath
	if strings.HasPrefix(pkg.Path, mp+"/cmd/") ||
		pkgPathIn(pkg, mp+"/internal/experiments") ||
		pkgPathIn(pkg, mp+"/internal/tracegen") {
		return
	}
	statsRand := pkg.Path == mp+"/internal/stats"
	for _, f := range pkg.Files {
		if statsRand && filepath.Base(pkg.Fset.Position(f.Package).Filename) == "rand.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Int) carry their own seed
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
					report(sel.Pos(), "time.%s reads the wall clock in a determinism-critical package; thread explicit timestamps instead (contract: identical inputs, byte-identical reports)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(fn.Name(), "New") {
					report(sel.Pos(), "%s.%s draws from the seedless global source; use a seeded *rand.Rand (internal/stats.NewRand) so runs are reproducible", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
}
