package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one parsed and typechecked package as the analyzers see it:
// non-test files only (the determinism contract governs production code;
// tests may fan out and fake clocks freely), in sorted file order.
type Package struct {
	Path       string // import path, e.g. "anomalyx/internal/histogram"
	ModulePath string // the module's root import path, e.g. "anomalyx"
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Info       *types.Info
	Types      *types.Package
}

// Loader parses and typechecks packages without any tooling beyond the
// standard library: module-local imports resolve to packages the Loader
// has already checked, and standard-library imports are typechecked from
// GOROOT source via go/importer's "source" mode (modern toolchains ship
// no stdlib export data). One Loader shares a FileSet and an import
// cache across every load, so fixtures and module packages are cheap to
// check together.
type Loader struct {
	Fset  *token.FileSet
	std   types.ImporterFrom
	local map[string]*types.Package
}

// NewLoader returns a Loader with an empty cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		local: map[string]*types.Package{},
	}
}

// Import implements types.Importer: module-local paths hit the cache,
// everything else falls through to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom with the same resolution.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.local[path]; ok {
		return p, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRE.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("no module directive in %s", filepath.Join(root, "go.mod"))
	}
	return string(m[1]), nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule discovers, parses, and typechecks every package under the
// module rooted at root, in dependency order, and returns them sorted by
// import path.
func LoadModule(root string) ([]*Package, error) {
	return NewLoader().LoadModule(root)
}

// LoadModule is the method form of the package-level LoadModule; loads
// share this Loader's cache.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		pkg     *Package
		imports []string
	}
	byPath := map[string]*rawPkg{}
	var order []string
	for _, dir := range dirs {
		pkg, imports, err := l.parseDir(dir, modPath, importPathFor(root, modPath, dir))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		byPath[pkg.Path] = &rawPkg{pkg: pkg, imports: imports}
		order = append(order, pkg.Path)
	}
	sort.Strings(order)

	// Typecheck in dependency order: a post-order DFS over module-local
	// imports guarantees every local dependency is in the cache before
	// its importer is checked.
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[string]int{}
	var visit func(path string) error
	visit = func(path string) error {
		rp, ok := byPath[path]
		if !ok {
			return nil // stdlib or external; the source importer handles it
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		for _, imp := range rp.imports {
			if err := visit(imp); err != nil {
				return err
			}
		}
		if err := l.check(rp.pkg); err != nil {
			return err
		}
		state[path] = done
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	pkgs := make([]*Package, 0, len(order))
	for _, path := range order {
		pkgs = append(pkgs, byPath[path].pkg)
	}
	return pkgs, nil
}

// LoadDir parses and typechecks the single package in dir as if it had
// the given import path within the given module — the fixture-test entry
// point, where testdata packages borrow realistic import paths to
// exercise path-dependent policies.
func (l *Loader) LoadDir(dir, modulePath, importPath string) (*Package, error) {
	pkg, _, err := l.parseDir(dir, modulePath, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	if err := l.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDir parses dir's non-test Go files in sorted order; it returns a
// nil Package when the directory holds none.
func (l *Loader) parseDir(dir, modulePath, importPath string) (*Package, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil, nil
	}
	sort.Strings(names)

	pkg := &Package{
		Path: importPath, ModulePath: modulePath, Dir: dir, Fset: l.Fset,
	}
	importSet := map[string]bool{}
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for imp := range importSet {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	return pkg, imports, nil
}

// check typechecks pkg and fills in Info and Types.
func (l *Loader) check(pkg *Package) error {
	pkg.Info = &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkg.Path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	l.local[pkg.Path] = tpkg
	return nil
}

// packageDirs returns every directory under root that may hold a
// package, skipping testdata, vendor, hidden directories, and nested
// modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under root to its import path.
func importPathFor(root, modPath, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}
