// Package goroutinesallowed is loaded under an audited concurrency
// import path (anomalyx/internal/engine), where goroutine spawns and
// channel makes are permitted because the package's merge order is
// pinned by determinism tests (fixture only).
package goroutinesallowed

// Not flagged: the fixture harness loads this package as
// anomalyx/internal/engine, which the goroutines policy audits.
func fanOut(xs []int) int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) { ch <- x * x }(x)
	}
	n := 0
	for range xs {
		n += <-ch
	}
	return n
}
