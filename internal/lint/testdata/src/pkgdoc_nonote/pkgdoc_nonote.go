// Package pkgdocnonote has a comment that says what the package is but
// not how it behaves under the contract, which is exactly the gap the
// analyzer exists to catch.
package pkgdocnonote // want "package comment of pkgdocnonote has no determinism/ordering note"

// Noop does nothing.
func Noop() {}
