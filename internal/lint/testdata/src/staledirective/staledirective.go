// Package stalefix seeds directive-hygiene cases for the detlint
// fixture harness: a live suppression, a stale one, and malformed ones
// (determinism: fixture only; the staledirective rule keeps
// suppressions from outliving the code they excused).
package stalefix

// Not flagged: the directive suppresses a real maprange finding.
func live(m map[string]int) int {
	n := 0
	//detlint:ok maprange -- summing commutes; no order reaches the result
	for _, v := range m {
		n += v
	}
	return n
}

// Flagged: the loop below ranges over a slice, so the directive
// suppresses nothing.
func stale(xs []int) int {
	n := 0
	//detlint:ok maprange -- left behind after a refactor replaced the map with a slice // want "directive suppresses no maprange finding"
	for _, v := range xs {
		n += v
	}
	return n
}

// Flagged: a reason is mandatory.
func noReason(m map[string]int) int {
	n := 0
	//detlint:ok maprange // want "has no reason"
	for _, v := range m { // want "range over map m"
		n += v
	}
	return n
}

// Flagged: the directive must name a known analyzer.
func unknownAnalyzer(m map[string]int) int {
	n := 0
	//detlint:ok sloppiness -- not a rule // want "unknown or unsuppressible analyzer"
	for _, v := range m { // want "range over map m"
		n += v
	}
	return n
}
