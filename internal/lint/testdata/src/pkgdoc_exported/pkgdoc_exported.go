// Package pkgdocexported is loaded as anomalyx/internal/wire, the
// strict public boundary where every exported identifier must carry a
// doc comment (determinism: fixture only; snapshot ordering is not at
// stake here).
package pkgdocexported

// Documented is fine.
func Documented() {}

func Undocumented() {} // want "exported function Undocumented has no doc comment"

type Bare struct{} // want "exported type Bare has no doc comment"

// Named has a doc comment.
type Named struct{}

func (Named) Method() {} // want "exported method Method has no doc comment"

// DocumentedValue carries a doc comment.
var DocumentedValue = 1

var BareValue = 2 // want "exported value BareValue has no doc comment"

func (Named) documented() {} // unexported methods need no doc
