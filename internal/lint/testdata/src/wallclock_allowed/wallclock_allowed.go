// Package wallclockallowed is loaded under a cmd/ import path, where
// the wallclock analyzer is allowlisted: command-line front ends may
// time their own progress because nothing there enters a report
// (determinism: fixture only).
package wallclockallowed

import "time"

// Not flagged: the fixture harness loads this package as
// anomalyx/cmd/wallclockallowed, which the wallclock policy exempts.
func stamp() time.Time {
	return time.Now()
}
