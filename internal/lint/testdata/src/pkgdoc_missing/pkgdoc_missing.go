package pkgdocmissing // want "package pkgdocmissing has no package comment"

// Documented exported function in an undocumented package.
func Noop() {}
