// Package wallclockfix seeds wallclock violations for the detlint
// fixture harness (determinism: fixture only, never built into the
// module; the analyzer it exercises keeps wall-clock reads out of
// determinism-critical packages).
package wallclockfix

import (
	"math/rand/v2"
	"time"
)

// Flagged: reads the wall clock.
func stamp() int64 {
	return time.Now().Unix() // want "time.Now reads the wall clock"
}

// Flagged: time.Since is a wall-clock read too.
func age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

// Flagged: the global math/rand/v2 source is seedless.
func draw() int {
	return rand.Int() // want "math/rand/v2.Int draws from the seedless global source"
}

// Not flagged: an explicitly seeded source is reproducible, and methods
// on *rand.Rand carry that seed.
func drawSeeded() uint64 {
	r := rand.New(rand.NewPCG(1, 2))
	return r.Uint64()
}

// Not flagged: suppressed with a reason.
func stampExempt() int64 {
	//detlint:ok wallclock -- operational log timestamp; never enters a report
	return time.Now().Unix()
}
