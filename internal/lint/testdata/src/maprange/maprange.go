// Package maprangefix seeds maprange violations for the detlint fixture
// harness; findings and suppressions here pin the analyzer's behavior
// (determinism: fixture only, never built into the module).
package maprangefix

import "sort"

// Flagged: plain range over a map with no sort at the boundary.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m: iteration order is nondeterministic"
		out = append(out, k)
	}
	return out
}

// Not flagged: the statement after the loop sorts what it accumulated.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Not flagged: a justified suppression with a reason.
func sum(m map[string]int) int {
	n := 0
	//detlint:ok maprange -- summing commutes; no order reaches the result
	for _, v := range m {
		n += v
	}
	return n
}

// Flagged: range over a named map type through a value.
type counts map[uint64]uint64

func total(c counts) uint64 {
	var n uint64
	for _, v := range c { // want "range over map c: iteration order is nondeterministic"
		n += v
	}
	return n
}
