// Package gofix seeds goroutines violations for the detlint fixture
// harness (determinism: fixture only; the analyzer it exercises keeps
// fan-out inside the audited, order-pinned concurrency packages).
package gofix

// Flagged: goroutine spawn and channel make outside the audited
// packages.
func fanOut(xs []int) int {
	ch := make(chan int, len(xs)) // want "outside the audited concurrency packages"
	for _, x := range xs {
		go func(x int) { ch <- x * x }(x) // want "go statement outside the audited concurrency packages"
	}
	n := 0
	for range xs {
		n += <-ch
	}
	return n
}

// Not flagged: make of a non-channel type.
func buffer() []int {
	return make([]int, 0, 8)
}

// Not flagged: suppressed with a reason.
func spawnExempt(done func()) {
	//detlint:ok goroutines -- fire-and-forget cleanup; result never merges into a report
	go done()
}
