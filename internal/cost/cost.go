// Package cost quantifies the decrease in manual classification cost of
// §III-F: instead of classifying every flow of a flagged interval, the
// operator classifies the extracted item-sets, and the reduction is
//
//	R = F / I
//
// where F is the number of flows in the flagged interval and I the number
// of item-sets in the mining output. The paper assumes classification
// cost linear in the number of items to classify and reports reductions
// between 600 000x and 800 000x for 0.7–2.6 M-flow intervals.
//
// Determinism: pure arithmetic on its inputs — no state, no iteration
// order, no clock — so it is trivially deterministic.
package cost

import "math"

// Reduction returns R = flows / itemSets. With an empty mining output the
// operator inspects nothing; the reduction is reported as +Inf.
func Reduction(flows, itemSets int) float64 {
	if flows < 0 || itemSets < 0 {
		panic("cost: negative counts")
	}
	if itemSets == 0 {
		return math.Inf(1)
	}
	return float64(flows) / float64(itemSets)
}

// MeanReduction averages the per-interval reductions, skipping infinite
// entries (intervals whose mining output was empty), mirroring how the
// paper averages over its 31 anomalous intervals.
func MeanReduction(flows, itemSets []int) float64 {
	if len(flows) != len(itemSets) {
		panic("cost: length mismatch")
	}
	sum, n := 0.0, 0
	for i := range flows {
		r := Reduction(flows[i], itemSets[i])
		if math.IsInf(r, 1) {
			continue
		}
		sum += r
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
