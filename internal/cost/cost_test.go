package cost

import (
	"math"
	"testing"
)

func TestReduction(t *testing.T) {
	if got := Reduction(1500000, 3); got != 500000 {
		t.Errorf("Reduction = %v, want 500000", got)
	}
	if got := Reduction(100, 0); !math.IsInf(got, 1) {
		t.Errorf("empty output should be +Inf, got %v", got)
	}
	if got := Reduction(0, 5); got != 0 {
		t.Errorf("zero flows: %v", got)
	}
}

func TestReductionPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative input")
		}
	}()
	Reduction(-1, 2)
}

func TestMeanReduction(t *testing.T) {
	flows := []int{1000, 2000, 3000}
	sets := []int{10, 20, 0} // last one: empty output, skipped
	got := MeanReduction(flows, sets)
	if got != 100 {
		t.Errorf("MeanReduction = %v, want 100", got)
	}
}

func TestMeanReductionAllEmpty(t *testing.T) {
	if got := MeanReduction([]int{10}, []int{0}); !math.IsNaN(got) {
		t.Errorf("all-empty mean should be NaN, got %v", got)
	}
}

func TestMeanReductionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MeanReduction([]int{1, 2}, []int{1})
}

func TestPaperScaleReduction(t *testing.T) {
	// §III-F: 0.7–2.6M flows per interval, a handful of item-sets →
	// reductions of several hundred thousand.
	r := Reduction(2600000, 4)
	if r < 600000 || r > 800000 {
		t.Errorf("2.6M flows / 4 item-sets = %v, expected in [600k, 800k]", r)
	}
}
