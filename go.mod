module anomalyx

go 1.24
