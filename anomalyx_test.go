package anomalyx_test

import (
	"bytes"
	"testing"

	"anomalyx"
	"anomalyx/internal/hash"
	"anomalyx/internal/stats"
)

// hashFunc and newBenchPipeline are shared with bench_test.go.
func hashFunc() hash.Func { return hash.New(7) }

func newBenchPipeline() (*anomalyx.Pipeline, error) {
	return anomalyx.NewPipeline(anomalyx.Config{
		Detector: anomalyx.DetectorConfig{Bins: 1024, TrainIntervals: 4},
	})
}

func TestFacadePipelineEndToEnd(t *testing.T) {
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector:        anomalyx.DetectorConfig{Bins: 256, TrainIntervals: 6},
		RelativeSupport: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := stats.NewRand(3)
	benign := func() anomalyx.Flow {
		return anomalyx.Flow{
			SrcAddr: uint32(r.IntN(50000)), DstAddr: uint32(r.IntN(2000)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(1500)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
		}
	}
	var rep *anomalyx.Report
	for i := 0; i < 15; i++ {
		for j := 0; j < 8000; j++ {
			p.Observe(benign())
		}
		if rep, err = p.EndInterval(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 8000; j++ {
		p.Observe(benign())
	}
	for j := 0; j < 4000; j++ {
		p.Observe(anomalyx.Flow{
			SrcAddr: uint32(r.IntN(1 << 28)), DstAddr: 42, DstPort: 31337,
			SrcPort: uint16(r.IntN(60000)), Protocol: 6, Packets: 1, Bytes: 40,
		})
	}
	rep, err = p.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Fatal("facade pipeline missed the flood")
	}
	found := false
	for i := range rep.ItemSets {
		for _, it := range rep.ItemSets[i].Items {
			if it.Kind == anomalyx.DstPort && it.Value == 31337 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("flood not summarized: %v", rep.ItemSets)
	}
}

func TestFacadeOfflineExtraction(t *testing.T) {
	meta := anomalyx.NewMetaData()
	meta.Add(anomalyx.DstPort, 9996)
	flows := make([]anomalyx.Flow, 0, 1000)
	for i := 0; i < 600; i++ {
		flows = append(flows, anomalyx.Flow{DstPort: 9996, Protocol: 6, Packets: 2, Bytes: 96})
	}
	for i := 0; i < 400; i++ {
		flows = append(flows, anomalyx.Flow{DstPort: 80, Protocol: 6, Packets: 5, Bytes: 700})
	}
	rep, err := anomalyx.ExtractOffline(anomalyx.Config{MinSupport: 100}, flows, meta)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SuspiciousFlows != 600 {
		t.Errorf("suspicious = %d, want 600", rep.SuspiciousFlows)
	}
	if len(rep.ItemSets) != 1 || rep.ItemSets[0].Support != 600 {
		t.Errorf("item-sets: %v", rep.ItemSets)
	}
}

func TestFacadeMiners(t *testing.T) {
	names := map[string]anomalyx.Miner{
		"apriori": anomalyx.Apriori(), "fp-growth": anomalyx.FPGrowth(), "eclat": anomalyx.Eclat(),
	}
	for want, m := range names {
		if m.Name() != want {
			t.Errorf("miner %q reports %q", want, m.Name())
		}
	}
}

func TestFacadeNetFlowIO(t *testing.T) {
	const bootMs = int64(1700000000000)
	var buf bytes.Buffer
	w := anomalyx.NewFlowWriter(&buf, bootMs)
	in := anomalyx.Flow{
		SrcAddr: 1, DstAddr: 2, SrcPort: 3, DstPort: 4, Protocol: 6,
		Packets: 5, Bytes: 600, Start: bootMs + 1000, End: bootMs + 2000,
	}
	if err := w.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := anomalyx.NewFlowReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != in {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFacadePrefilterStrategies(t *testing.T) {
	if anomalyx.PrefilterUnion().Name() != "union" {
		t.Error("union name")
	}
	if anomalyx.PrefilterIntersection().Name() != "intersection" {
		t.Error("intersection name")
	}
}

func TestFacadeV9RoundTrip(t *testing.T) {
	const bootMs = int64(1700000000000)
	in := []anomalyx.Flow{{
		SrcAddr: 10, DstAddr: 20, SrcPort: 30, DstPort: 40, Protocol: 6,
		TCPFlags: 2, Packets: 5, Bytes: 500, Start: bootMs + 100, End: bootMs + 200,
	}}
	pkt, err := anomalyx.NewV9Encoder(bootMs, 559).Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := anomalyx.NewV9Decoder().Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != in[0] {
		t.Errorf("v9 facade round trip: %+v", got)
	}
}

func TestFacadeEntropyMetricPipeline(t *testing.T) {
	p, err := anomalyx.NewPipeline(anomalyx.Config{
		Detector: anomalyx.DetectorConfig{
			Bins: 256, TrainIntervals: 6, Metric: anomalyx.MetricEntropy,
		},
		RelativeSupport: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := stats.NewRand(21)
	benign := func() anomalyx.Flow {
		return anomalyx.Flow{
			SrcAddr: uint32(r.IntN(3000)), DstAddr: uint32(r.IntN(300)),
			SrcPort: uint16(r.IntN(60000)), DstPort: uint16(r.IntN(800)),
			Protocol: 6, Packets: uint32(1 + r.IntN(20)), Bytes: uint64(100 + r.IntN(2000)),
		}
	}
	for i := 0; i < 14; i++ {
		for j := 0; j < 6000; j++ {
			p.Observe(benign())
		}
		if _, err := p.EndInterval(); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 6000; j++ {
		p.Observe(benign())
	}
	for j := 0; j < 3000; j++ {
		p.Observe(anomalyx.Flow{
			SrcAddr: uint32(r.IntN(1 << 28)), DstAddr: 777, DstPort: 7777,
			SrcPort: uint16(r.IntN(60000)), Protocol: 6, Packets: 1, Bytes: 40,
		})
	}
	rep, err := p.EndInterval()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm {
		t.Fatal("entropy-metric pipeline missed the flood")
	}
	if len(rep.ItemSets) == 0 {
		t.Fatal("no item-sets extracted")
	}
}
